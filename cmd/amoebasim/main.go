// Command amoebasim regenerates the paper's results on the simulated
// Amoeba pool:
//
//	amoebasim -table 1          Table 1 (communication latencies)
//	amoebasim -table 2          Table 2 (communication throughputs)
//	amoebasim -table 3          Table 3 (Orca applications; -scale quick|paper)
//	amoebasim -decompose        §4.2/§4.3 per-operation cost accounting
//	amoebasim -trace            protocol timeline of one null RPC per mode
//	amoebasim -sweep latency    CSV latency-vs-size sweep (plottable)
//	amoebasim -sweep speedup    CSV speedup curve for one app (-apps, -scale)
//	amoebasim -metrics          per-layer metrics tables for both modes
//	amoebasim -metrics-json F   machine-readable metrics appendix to file F
//	amoebasim -trace-json F     null-RPC span timelines as JSON to file F
//	amoebasim -faults S         fault-injection soak under scenario S (list|all|name)
//	amoebasim -fault-seed N     fault-schedule seed (default: derived from -seed)
//	amoebasim -jobs N           worker-pool width for sweeps (default: NumCPU)
//	amoebasim -bench-json F     full Table 1-3 sweep to BENCH artifact F ("auto": BENCH_<date>.json)
//	amoebasim -baseline F       regression gate: compare the sweep against baseline F
//	amoebasim -wall-budget D    fail the gate if the sweep's wall-clock exceeds D
//	amoebasim -decomp-json F    causal latency decomposition to DECOMP artifact F ("auto": DECOMP_<date>.json)
//	amoebasim -decomp-baseline F  zero-drift gate: compare the decomposition against baseline F
//	amoebasim -chrome-trace F   Chrome trace-event JSON (Perfetto-loadable) of a traced run to F
//	amoebasim -trace-cap N      trace ring-buffer capacity in events (default 65536)
//	amoebasim -workload open    latency-vs-offered-load curves for all three modes
//	amoebasim -load L1,L2,...   offered loads in ops/sec (default 400,1300,2400)
//	amoebasim -clients N        client-population size (default 2x workers)
//	amoebasim -mix M            op mix: rpc, group, orca, mixed or "op=w,..." (default group)
//	amoebasim -dist D           message sizes: fixed:N or uniform:LO-HI (default fixed:256)
//	amoebasim -knee             bisect to each mode's saturation point (default true)
//	amoebasim -seq-shards N     shard the groups across N sequencer processors (default 1)
//	amoebasim -wl-segments N    Ethernet segment count for the workload cluster (default auto)
//	amoebasim -wl-fanin N       switch fan-in: segments per switch group (default 0: flat)
//	amoebasim -workload-json F  workload curves as a JSON artifact ("auto": WORKLOAD_<date>.json)
//	amoebasim -scalability      knee-vs-cluster-size sweep across sequencer strategies
//	amoebasim -scalability-json F  scalability sweep as a JSON artifact ("auto": SCALE_<date>.json)
//	amoebasim -scalability-baseline F  zero-drift gate against a committed SCALE_*.json
//	amoebasim -perf             single-run performance cells (events/sec)
//	amoebasim -par N            partitioned-engine worker count for -perf (default 1)
//	amoebasim -perf-json F      perf cells as a PERF artifact ("auto": PERF_<date>.json)
//	amoebasim -perf-baseline F  zero-drift gate on the perf cells' simulated results
//	amoebasim -cpuprofile F     write a pprof CPU profile of the run to F
//	amoebasim -memprofile F     write a pprof heap profile at exit to F
//	amoebasim -all              everything
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"amoebasim/internal/apps"
	"amoebasim/internal/bench"
	"amoebasim/internal/bypass"
	"amoebasim/internal/causal"
	"amoebasim/internal/cluster"
	"amoebasim/internal/faults"
	"amoebasim/internal/panda"
	"amoebasim/internal/proc"
	"amoebasim/internal/trace"
	"amoebasim/internal/workload"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate a paper table (1, 2 or 3)")
		decompose  = flag.Bool("decompose", false, "print the §4.2/§4.3 per-operation decomposition")
		traceFlag  = flag.Bool("trace", false, "print the protocol timeline of one null RPC per implementation")
		sweep      = flag.String("sweep", "", "emit a CSV sweep: latency or speedup")
		all        = flag.Bool("all", false, "regenerate everything")
		scale      = flag.String("scale", "paper", "table 3 problem scale: paper or quick")
		appsFlag   = flag.String("apps", "", "comma-separated subset of apps for table 3 (tsp,asp,ab,rl,sor,leq)")
		procsFlag  = flag.String("procs", "", "comma-separated processor counts for table 3 (default 1,8,16,32)")
		seed       = flag.Uint64("seed", 5, "workload seed")
		metricsF   = flag.Bool("metrics", false, "print per-layer metrics tables for both implementations")
		metricsJ   = flag.String("metrics-json", "", "write the metrics appendix as JSON to this file")
		traceJ     = flag.String("trace-json", "", "write the null-RPC span timelines as JSON to this file")
		faultsF    = flag.String("faults", "", "run the fault-injection soak: a scenario name, 'all', or 'list'")
		faultSeed  = flag.Uint64("fault-seed", 0, "fault-schedule seed (0: derived from -seed)")
		jobs       = flag.Int("jobs", bench.DefaultWorkers(), "worker-pool width for parallel sweeps")
		benchJSON  = flag.String("bench-json", "", "run the full Table 1-3 sweep and write the BENCH artifact here ('auto': BENCH_<date>.json)")
		baseline   = flag.String("baseline", "", "compare the -bench-json sweep against this committed BENCH_*.json baseline (zero drift tolerance)")
		wallBudget = flag.Duration("wall-budget", 0, "with -baseline: fail if the sweep's host wall-clock exceeds this duration (0: no check)")
		workloadF  = flag.String("workload", "", "run the workload engine: open (offered-load curves) or closed (population with think time)")
		loads      = flag.String("load", "", "comma-separated open-loop offered loads in ops/sec (default 400,1300,2400)")
		clients    = flag.Int("clients", 0, "workload client-population size (default 2x workers)")
		mixFlag    = flag.String("mix", "group", "workload op mix: rpc, group, orca, mixed, or an op=weight list")
		distFlag   = flag.String("dist", "fixed:256", "workload message-size distribution: fixed:N or uniform:LO-HI")
		arrival    = flag.String("arrival", "poisson", "workload arrival process: poisson, uniform, fixed, gamma:K or weibull:K (K = shape; K<1 is heavy-tailed)")
		classesF   = flag.String("classes", "", "multi-tenant population: 'name:key=val,...;name:...' or @file.json (keys: clients, load, mix, dist, arrival, think, slo, shape)")
		shapeFlag  = flag.String("shape", "", "modulate offered load over time: bursty[:PERIOD[:DUTY[:AMP]]] or diurnal[:PERIOD[:AMP]] (classes without their own shape inherit it)")
		recTrace   = flag.String("record-trace", "", "record the first workload cell's generated op stream to this TRACE_*.json ('auto': TRACE_<date>.json)")
		repTrace   = flag.String("replay-trace", "", "replay a recorded TRACE_*.json instead of generating arrivals: one paired point per mode over identical arrivals")
		think      = flag.Duration("think", 0, "closed-loop mean think time (default 2ms)")
		wlProcs    = flag.Int("wl-procs", 0, "workload worker-pool size (default 4)")
		wlWindow   = flag.Duration("wl-window", 0, "workload measurement window in simulated time (default 400ms)")
		wlWarmup   = flag.Duration("wl-warmup", 0, "workload warmup before measurement (default window/4)")
		knee       = flag.Bool("knee", true, "with -workload open: bisect to each mode's saturation point")
		seqShards  = flag.Int("seq-shards", 0, "shard the communication groups across this many sequencer processors (default 1)")
		wlSegments = flag.Int("wl-segments", 0, "Ethernet segment count for the workload cluster (0: one segment per 8 processors)")
		wlFanIn    = flag.Int("wl-fanin", 0, "switch fan-in (segments per switch group) for a hierarchical topology (0: flat)")
		workloadJ  = flag.String("workload-json", "", "write the workload curves as a JSON artifact ('auto': WORKLOAD_<date>.json)")
		scalab     = flag.Bool("scalability", false, "run the knee-vs-cluster-size sweep across sequencer strategies")
		scalabJ    = flag.String("scalability-json", "", "write the scalability sweep as a JSON artifact ('auto': SCALE_<date>.json)")
		scalabBase = flag.String("scalability-baseline", "", "compare the scalability sweep against this committed SCALE_*.json baseline (zero drift tolerance)")
		decompJSON = flag.String("decomp-json", "", "write the causal latency-decomposition artifact here ('auto': DECOMP_<date>.json)")
		decompBase = flag.String("decomp-baseline", "", "compare the -decomp-json sweep against this committed DECOMP_*.json baseline (zero drift tolerance)")
		chromeTr   = flag.String("chrome-trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of a traced run to this file")
		traceCap   = flag.Int("trace-cap", 0, "trace ring-buffer capacity in events (0: 65536 default)")
		wlDecomp   = flag.Bool("wl-decomp", false, "with -workload: collect per-phase latency breakdowns at each load point")
		dispatchF  = flag.String("dispatch", "poll", "bypass receive dispatch mode: poll, interrupt or hybrid (other implementations ignore it)")
		par        = flag.Int("par", 1, "partitioned-engine worker count for single-run parallel execution (<=1: single-queue engine)")
		perfF      = flag.Bool("perf", false, "run the single-run performance cells (events/sec at -par workers)")
		perfJSON   = flag.String("perf-json", "", "write the perf cells as a PERF artifact ('auto': PERF_<date>.json)")
		perfBase   = flag.String("perf-baseline", "", "compare the perf cells against this committed PERF_*.json baseline (zero drift on simulated results)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()
	// Profiling teardown must run on every exit path, so the flag
	// families dispatch through a closure that returns instead of exiting.
	dispatch := func() error {
		disp, err := bypass.ParseDispatch(*dispatchF)
		if err != nil {
			return err
		}
		if *perfF || *perfJSON != "" || *perfBase != "" {
			return runPerf(*perfJSON, *perfBase, *par, *seed, *wallBudget)
		}
		if *scalab || *scalabJ != "" || *scalabBase != "" {
			return runScalability(*scalabJ, *scalabBase, *mixFlag, *distFlag, *wlWindow, *wlFanIn, disp, *seed, *jobs)
		}
		if *workloadF != "" || *workloadJ != "" || *repTrace != "" || *recTrace != "" {
			return runWorkload(workloadArgs{
				loop: *workloadF, loads: *loads, clients: *clients, mix: *mixFlag,
				dist: *distFlag, arrival: *arrival, think: *think, procs: *wlProcs,
				window: *wlWindow, warmup: *wlWarmup, knee: *knee,
				jsonPath: *workloadJ, seed: *seed, jobs: *jobs,
				seqShards: *seqShards, segments: *wlSegments, fanIn: *wlFanIn,
				classes: *classesF, shape: *shapeFlag, dispatch: disp,
				recordTrace: *recTrace, replayTrace: *repTrace,
				decomp: *wlDecomp || *decompJSON != "", decompPath: *decompJSON,
			})
		}
		if *faultsF != "" {
			return runFaults(*faultsF, *seed, *faultSeed, *jobs)
		}
		if *decompJSON != "" || *decompBase != "" {
			return runDecomp(*decompJSON, *decompBase, *seed, *jobs)
		}
		if *benchJSON != "" || *baseline != "" {
			return runBenchSweep(*benchJSON, *baseline, *scale, *appsFlag, *procsFlag, *seed, *jobs, *wallBudget)
		}
		return run(*table, *decompose, *traceFlag, *all, *sweep, *scale, *appsFlag, *procsFlag, *seed, *metricsF, *metricsJ, *traceJ, *chromeTr, *traceCap, *jobs)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err == nil {
		err = dispatch()
		if perr := stopProfiles(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "amoebasim:", err)
		os.Exit(1)
	}
}

// startProfiles arms the -cpuprofile / -memprofile collection and returns
// the teardown that stops the CPU profile and writes the heap profile.
// The teardown must run on every exit path, so runners return errors
// instead of exiting.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote CPU profile %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // get up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote heap profile %s\n", memPath)
		}
		return nil
	}, nil
}

func run(table int, decompose, traceFlag, all bool, sweep, scale, appsFlag, procsFlag string, seed uint64, metricsF bool, metricsJ, traceJ, chromeTr string, traceCap, jobs int) error {
	did := false
	if sweep != "" {
		if err := runSweep(sweep, appsFlag, scale, seed); err != nil {
			return err
		}
		did = true
	}
	if traceFlag {
		for _, mode := range panda.AllModes() {
			fmt.Printf("--- null RPC timeline, %v ---\n", mode)
			log, err := rpcTrace(mode, traceCap)
			if err != nil {
				return err
			}
			if _, err := log.WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		did = true
	}
	if traceJ != "" {
		if err := writeTraceJSON(traceJ, traceCap); err != nil {
			return err
		}
		did = true
	}
	if chromeTr != "" {
		if err := writeChromeTrace(chromeTr, traceCap); err != nil {
			return err
		}
		did = true
	}
	if metricsF || metricsJ != "" {
		appendix, err := bench.ObservabilityAppendix(seed)
		if err != nil {
			return err
		}
		if metricsF {
			if err := bench.PrintObservability(os.Stdout, appendix); err != nil {
				return err
			}
			fmt.Println()
		}
		if metricsJ != "" {
			f, err := os.Create(metricsJ)
			if err != nil {
				return err
			}
			if err := bench.WriteObservabilityJSON(f, appendix); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		did = true
	}
	if all || table == 1 {
		start := time.Now()
		rows, err := bench.Table1Sweep(nil, jobs)
		if err != nil {
			return err
		}
		bench.PrintTable1(os.Stdout, rows)
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if all || table == 2 {
		start := time.Now()
		t2, err := bench.Table2Sweep(jobs)
		if err != nil {
			return err
		}
		bench.PrintTable2(os.Stdout, t2)
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if all || decompose {
		ds := make([]bench.Decomposition, 0, 6)
		for _, f := range []func() (bench.Decomposition, error){
			func() (bench.Decomposition, error) { return bench.DecomposeRPC(panda.KernelSpace) },
			func() (bench.Decomposition, error) { return bench.DecomposeRPC(panda.UserSpace) },
			func() (bench.Decomposition, error) { return bench.DecomposeRPC(panda.Bypass) },
			func() (bench.Decomposition, error) { return bench.DecomposeGroup(panda.KernelSpace) },
			func() (bench.Decomposition, error) { return bench.DecomposeGroup(panda.UserSpace) },
			func() (bench.Decomposition, error) { return bench.DecomposeGroup(panda.Bypass) },
		} {
			d, err := f()
			if err != nil {
				return err
			}
			ds = append(ds, d)
		}
		bench.PrintDecomposition(os.Stdout, ds...)
		fmt.Println()
		did = true
	}
	if all || table == 3 {
		start := time.Now()
		appList, err := resolveApps(appsFlag, scale)
		if err != nil {
			return err
		}
		procs, err := parseProcs(procsFlag)
		if err != nil {
			return err
		}
		entries, err := bench.Table3Sweep(appList, procs, seed, jobs)
		if err != nil {
			return err
		}
		bench.PrintTable3(os.Stdout, entries)
		fmt.Printf("(generated in %v)\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if !did {
		flag.Usage()
	}
	return nil
}

// resolveApps resolves the -apps subset (or the full list) at the given
// scale. Every requested app must exist and, at quick scale, must have a
// quick-scale variant — a silent fallback to the paper-scale problem
// size would skew quick sweeps.
func resolveApps(appsFlag, scale string) ([]apps.App, error) {
	if appsFlag == "" {
		return bench.Table3Apps(scale), nil
	}
	byName := make(map[string]apps.App)
	for _, a := range bench.Table3Apps(scale) {
		byName[a.Name()] = a
	}
	var appList []apps.App
	for _, name := range strings.Split(appsFlag, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			if scale == "quick" && apps.ByName(name) != nil {
				return nil, fmt.Errorf("app %q has no quick-scale variant", name)
			}
			return nil, fmt.Errorf("unknown app %q", name)
		}
		appList = append(appList, a)
	}
	return appList, nil
}

// parseProcs parses the -procs list strictly: every element must be a
// whole positive integer with no trailing junk.
func parseProcs(procsFlag string) ([]int, error) {
	if procsFlag == "" {
		return nil, nil
	}
	var procs []int
	for _, f := range strings.Split(procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -procs value %q: not a whole number", f)
		}
		if p < 1 {
			return nil, fmt.Errorf("bad -procs value %q: must be positive", f)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// runBenchSweep runs the full Table 1-3 sweep on the worker pool, writes
// the machine-readable BENCH artifact, and applies the regression gate
// against a committed baseline.
func runBenchSweep(benchJSON, baseline, scale, appsFlag, procsFlag string, seed uint64, jobs int, wallBudget time.Duration) error {
	appList, err := resolveApps(appsFlag, scale)
	if err != nil {
		return err
	}
	procs, err := parseProcs(procsFlag)
	if err != nil {
		return err
	}
	res, err := bench.RunSweep(bench.SweepConfig{
		Scale: scale, Apps: appList, Procs: procs, Seed: seed, Workers: jobs,
	})
	if err != nil {
		return err
	}
	bench.PrintTable1(os.Stdout, res.Table1)
	fmt.Println()
	bench.PrintTable2(os.Stdout, res.Table2)
	fmt.Println()
	bench.PrintTable3(os.Stdout, res.Table3)
	art := bench.NewArtifact(res)
	fmt.Printf("(%d jobs in %v on %d workers, %.1f jobs/sec)\n",
		len(res.Jobs), res.Wall.Round(time.Millisecond), art.Wall.Workers, art.Wall.JobsPerSec)

	if benchJSON != "" {
		if benchJSON == "auto" {
			benchJSON = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(benchJSON)
		if err != nil {
			return err
		}
		if err := bench.WriteArtifact(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", benchJSON)
	}
	if baseline != "" {
		base, err := bench.LoadArtifact(baseline)
		if err != nil {
			return err
		}
		if err := bench.CompareArtifacts(base, art, wallBudget); err != nil {
			return err
		}
		fmt.Printf("baseline %s: no drift\n", baseline)
	}
	return nil
}

// workloadArgs collects the -workload flag family.
type workloadArgs struct {
	loop, loads, mix, dist, arrival, jsonPath string
	classes, shape                            string // multi-tenant population + load-shape specs
	recordTrace, replayTrace                  string // TRACE_*.json record / replay paths
	clients, procs, jobs                      int
	seqShards, segments, fanIn                int
	think, window, warmup                     time.Duration
	knee                                      bool
	seed                                      uint64
	dispatch                                  bypass.Dispatch // bypass receive dispatch mode
	decomp                                    bool   // collect per-load-point phase breakdowns
	decompPath                                string // also write the DECOMP artifact (cells + load points)
}

// workloadSweepConfig validates the flag family and assembles the sweep
// configuration (factored out of runWorkload so tests can cover the
// parsing without running a sweep).
func workloadSweepConfig(a workloadArgs) (bench.WorkloadSweepConfig, error) {
	if a.loop == "" {
		a.loop = "open" // -workload-json alone implies the curve sweep
	}
	loop, err := workload.ParseLoop(a.loop)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	mix, err := workload.ParseMix(a.mix)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	dist, err := workload.ParseSizeDist(a.dist)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	arr, err := workload.ParseArrivalSpec(a.arrival)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	loads, err := workload.ParseLoads(a.loads)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	classes, err := workload.ParseClasses(a.classes)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	shape, err := workload.ParseShape(a.shape)
	if err != nil {
		return bench.WorkloadSweepConfig{}, err
	}
	if loop == workload.ClosedLoop && loads == nil {
		// Closed loop ignores offered load (the population self-limits):
		// one point per mode instead of the default grid.
		loads = []float64{0}
	}
	kneeOK := a.knee && loop == workload.OpenLoop
	if loop == workload.OpenLoop && loads == nil && len(classes) > 0 {
		// A multi-tenant spec usually carries absolute per-class loads:
		// run that one population point per mode rather than rescaling it
		// across the default grid. An explicit -load grid still treats the
		// class loads as relative shares of each grid point.
		abs := 0.0
		for _, c := range classes {
			abs += c.OfferedLoad
		}
		if abs > 0 {
			loads = []float64{0}
			kneeOK = false // the knee search would rescale the absolute loads
		}
	}
	base := workload.Config{
		Procs: a.procs, Loop: loop, Clients: a.clients,
		ThinkTime: a.think, Arrival: arr.Kind, ArrivalShape: arr.Shape,
		Mix: mix, Sizes: dist, Classes: classes, Shape: shape,
		Warmup: a.warmup, Window: a.window, Seed: a.seed,
		SeqShards: a.seqShards, Dispatch: a.dispatch,
		Decompose: a.decomp,
	}
	if a.segments > 0 || a.fanIn > 0 {
		base.Topology = &cluster.Topology{Segments: a.segments, SwitchFanIn: a.fanIn}
	}
	cfg := bench.WorkloadSweepConfig{
		Base:    base,
		Loads:   loads,
		Knee:    kneeOK,
		Workers: a.jobs,
		Record:  a.recordTrace != "",
	}
	if a.replayTrace != "" {
		// Stream the events from disk: only the header is materialized,
		// and each replayed point pulls its own incremental pass.
		tr, src, err := workload.OpenTraceStream(a.replayTrace)
		if err != nil {
			return bench.WorkloadSweepConfig{}, err
		}
		cfg.Replay = tr
		cfg.ReplaySource = src
	}
	return cfg, nil
}

// runScalability drives the knee-vs-cluster-size sweep over the sequencer
// strategies, prints the curves, and optionally writes the machine-readable
// artifact and applies the zero-drift gate against a committed baseline.
func runScalability(jsonPath, baseline, mixFlag, distFlag string, window time.Duration, fanIn int, disp bypass.Dispatch, seed uint64, jobs int) error {
	mix, err := workload.ParseMix(mixFlag)
	if err != nil {
		return err
	}
	dist, err := workload.ParseSizeDist(distFlag)
	if err != nil {
		return err
	}
	res, err := bench.ScalabilitySweep(bench.ScalabilitySweepConfig{
		Base:        workload.Config{Mix: mix, Sizes: dist, Window: window, Seed: seed, Dispatch: disp},
		SwitchFanIn: fanIn,
		Workers:     jobs,
	})
	if err != nil {
		return err
	}
	bench.PrintScalability(os.Stdout, res)
	fmt.Printf("(%d jobs in %v on %d workers)\n",
		len(res.Jobs), res.Wall.Round(time.Millisecond), jobs)
	art := bench.NewScalabilityArtifact(res)
	if jsonPath != "" {
		path := jsonPath
		if path == "auto" {
			path = "SCALE_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := bench.WriteScalabilityArtifact(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if baseline != "" {
		base, err := bench.LoadScalabilityArtifact(baseline)
		if err != nil {
			return err
		}
		if err := bench.CompareScalability(base, art); err != nil {
			return err
		}
		fmt.Printf("baseline %s: no drift\n", baseline)
	}
	return nil
}

// runWorkload drives the traffic generator over the offered-load grid in
// all three implementation configurations, prints the
// latency-vs-offered-load curves (with the bisected knees), and optionally
// writes the machine-readable artifact.
func runWorkload(a workloadArgs) error {
	cfg, err := workloadSweepConfig(a)
	if err != nil {
		return err
	}
	res, err := bench.WorkloadSweep(cfg)
	if err != nil {
		return err
	}
	bench.PrintWorkload(os.Stdout, res)
	fmt.Printf("(%d jobs in %v on %d workers)\n",
		len(res.Jobs), res.Wall.Round(time.Millisecond), a.jobs)

	if a.recordTrace != "" {
		if res.Trace == nil {
			return fmt.Errorf("-record-trace: the sweep recorded no trace")
		}
		path := a.recordTrace
		if path == "auto" {
			path = "TRACE_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		if err := workload.SaveTrace(path, res.Trace); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events, %s)\n", path, len(res.Trace.Events), res.Trace.RecordedMode)
	}

	if a.decompPath != "" {
		// The workload-integrated decomposition artifact: the fixed
		// §4.2/§4.3 cells plus one decomposed cell per load point.
		art, err := bench.RunDecomposition(bench.DecompConfig{Seed: a.seed, Workers: a.jobs})
		if err != nil {
			return err
		}
		art.Workload = bench.WorkloadDecomp(res)
		if err := art.CheckConservation(); err != nil {
			return err
		}
		bench.PrintLatencyDecomp(os.Stdout, art)
		path := a.decompPath
		if path == "auto" {
			path = "DECOMP_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := causal.Write(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	} else if a.decomp {
		art := &causal.Artifact{Workload: bench.WorkloadDecomp(res)}
		if err := art.CheckConservation(); err != nil {
			return err
		}
		bench.PrintLatencyDecomp(os.Stdout, art)
	}

	if a.jsonPath != "" {
		path := a.jsonPath
		if path == "auto" {
			path = "WORKLOAD_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		art := &bench.Artifact{
			SchemaVersion: bench.ArtifactSchemaVersion,
			GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
			Scale:         "workload",
			Seed:          a.seed,
			Workload:      bench.NewWorkloadArtifact(res),
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := bench.WriteArtifact(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runPerf runs the single-run performance cells at the -par worker
// count, prints the events/sec table, writes the PERF artifact, and
// gates the simulated results against a committed baseline. The gate
// ignores the worker count: a -par 4 run must produce the simulated
// results of the -par 1 baseline, byte for byte.
func runPerf(jsonPath, baseline string, par int, seed uint64, wallBudget time.Duration) error {
	art, err := bench.RunPerf(bench.PerfConfig{Par: par, Seed: seed})
	if err != nil {
		return err
	}
	bench.PrintPerf(os.Stdout, art)
	for _, c := range art.Cells {
		if par > 1 && c.Partitions <= 1 {
			fmt.Printf("note: %s fell back to the single-queue engine (no safe partitioning)\n", c.Name)
		}
	}
	if jsonPath != "" {
		path := jsonPath
		if path == "auto" {
			path = "PERF_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := bench.WritePerfArtifact(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if baseline != "" {
		base, err := bench.LoadPerfArtifact(baseline)
		if err != nil {
			return err
		}
		if err := bench.ComparePerf(base, art, wallBudget); err != nil {
			return err
		}
		fmt.Printf("perf baseline %s: no drift\n", baseline)
	}
	return nil
}

// runFaults runs the fault-injection soak workload (verified echo RPCs,
// ordered group sends, and the test-scale Orca applications) under one or
// all shipped scenarios, in both implementations, fanned out over the
// worker pool.
func runFaults(name string, seed, faultSeed uint64, jobs int) error {
	if name == "list" {
		for _, n := range faults.Names() {
			fmt.Printf("%-12s %s\n", n, faults.Describe(n))
		}
		return nil
	}
	names := []string{name}
	if name == "all" {
		names = faults.Names()
	}
	runs, err := bench.FaultSoakSweep(names, seed, faultSeed, jobs)
	if err != nil {
		return err
	}
	for _, r := range runs {
		bench.PrintFaultSoak(os.Stdout, r.RPC)
		for _, a := range r.Apps {
			fmt.Printf("app %s: correct answer, %v\n", a.App, a.Elapsed)
		}
		fmt.Println()
	}
	return nil
}

// runSweep emits plottable CSV series.
func runSweep(kind, appsFlag, scale string, seed uint64) error {
	switch kind {
	case "latency":
		fmt.Println("size_bytes,unicast_ms,multicast_ms,rpc_user_ms,rpc_kernel_ms,rpc_bypass_ms,group_user_ms,group_kernel_ms,group_bypass_ms")
		for size := 0; size <= 8192; size += 512 {
			var vals [8]time.Duration
			for i, f := range []func() (time.Duration, error){
				func() (time.Duration, error) { return bench.SystemLatency(panda.UserSpace, size, false) },
				func() (time.Duration, error) { return bench.SystemLatency(panda.UserSpace, size, true) },
				func() (time.Duration, error) { return bench.RPCLatency(panda.UserSpace, size) },
				func() (time.Duration, error) { return bench.RPCLatency(panda.KernelSpace, size) },
				func() (time.Duration, error) { return bench.RPCLatency(panda.Bypass, size) },
				func() (time.Duration, error) { return bench.GroupLatency(panda.UserSpace, size, false) },
				func() (time.Duration, error) { return bench.GroupLatency(panda.KernelSpace, size, false) },
				func() (time.Duration, error) { return bench.GroupLatency(panda.Bypass, size, false) },
			} {
				d, err := f()
				if err != nil {
					return err
				}
				vals[i] = d
			}
			fmt.Printf("%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", size,
				msF(vals[0]), msF(vals[1]), msF(vals[2]), msF(vals[3]), msF(vals[4]), msF(vals[5]), msF(vals[6]), msF(vals[7]))
		}
		return nil
	case "speedup":
		name := appsFlag
		if name == "" {
			name = "asp"
		}
		appList, err := resolveApps(strings.TrimSpace(name), scale)
		if err != nil {
			return err
		}
		app := appList[0]
		fmt.Println("procs,kernel_s,user_s,kernel_speedup,user_speedup")
		var base [2]float64
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			var secs [2]float64
			for i, mode := range []panda.Mode{panda.KernelSpace, panda.UserSpace} {
				res, err := apps.RunApp(app, cluster.Config{Procs: p, Mode: mode, Seed: seed})
				if err != nil {
					return err
				}
				secs[i] = res.Elapsed.Seconds()
			}
			if p == 1 {
				base = secs
			}
			fmt.Printf("%d,%.2f,%.2f,%.2f,%.2f\n", p, secs[0], secs[1],
				base[0]/secs[0], base[1]/secs[1])
		}
		return nil
	default:
		return fmt.Errorf("unknown sweep %q (latency or speedup)", kind)
	}
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// rpcTrace runs one null RPC with tracing enabled and returns the
// captured protocol timeline. cap sizes the ring (0: the 64k default).
func rpcTrace(mode panda.Mode, cap int) (*trace.Log, error) {
	c, err := cluster.New(cluster.Config{Procs: 2, Mode: mode, Seed: 1})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	log := trace.NewLog(cap)
	c.Sim.SetTracer(log)
	srv := c.Transports[0]
	srv.HandleRPC(func(t *proc.Thread, ctx *panda.RPCContext, req any, n int) {
		srv.Reply(t, ctx, nil, 0)
	})
	c.Procs[1].NewThread("client", proc.PrioNormal, func(t *proc.Thread) {
		_, _, _ = c.Transports[1].Call(t, 0, nil, 0)
	})
	c.Run()
	return log, nil
}

// runDecomp runs the causal latency-decomposition sweep, prints the
// §4.2/§4.3 tables, writes the DECOMP artifact, and applies the zero-drift
// gate against a committed baseline.
func runDecomp(path, baseline string, seed uint64, jobs int) error {
	art, err := bench.RunDecomposition(bench.DecompConfig{Seed: seed, Workers: jobs})
	if err != nil {
		return err
	}
	bench.PrintLatencyDecomp(os.Stdout, art)
	if path != "" {
		if path == "auto" {
			path = "DECOMP_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := causal.Write(f, art); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if baseline != "" {
		base, err := causal.Load(baseline)
		if err != nil {
			return err
		}
		if err := causal.Compare(base, art); err != nil {
			return err
		}
		fmt.Printf("baseline %s: no drift\n", baseline)
	}
	return nil
}

// writeChromeTrace runs a fully traced scenario — a user-space 3-member
// group cluster where one member issues an RPC and then a totally-ordered
// group send — and exports the span log as Chrome trace-event JSON:
// one track per processor, nested protocol spans, and flow arrows
// following each operation's correlation id across tracks.
func writeChromeTrace(path string, cap int) error {
	col := causal.NewCollector(0)
	c, err := cluster.New(cluster.Config{
		Procs: 3, Mode: panda.UserSpace, Group: true, Seed: 1, Causal: col,
	})
	if err != nil {
		return err
	}
	defer c.Shutdown()
	log := trace.NewLog(cap)
	c.Sim.SetTracer(log)
	srv := c.Transports[0]
	srv.HandleRPC(func(t *proc.Thread, ctx *panda.RPCContext, req any, n int) {
		srv.Reply(t, ctx, nil, 0)
	})
	c.Procs[1].NewThread("client", proc.PrioNormal, func(t *proc.Thread) {
		_, _, _ = c.Transports[1].Call(t, 0, nil, 0)
		_ = c.Transports[1].GroupSend(t, nil, 0)
	})
	c.Run()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	st, err := causal.ExportChromeTrace(f, log)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events, %d slices, %d flow arrows (orphan ends %d, unclosed %d, ring-dropped %d)\n",
		path, st.Events, st.Slices, st.Flows, st.OrphanEnds, st.Unclosed, st.Dropped)
	return nil
}

// writeTraceJSON captures the null-RPC span timeline of each
// implementation and writes them as one JSON document.
func writeTraceJSON(path string, cap int) error {
	var docs struct {
		KernelSpace json.RawMessage `json:"kernel-space"`
		UserSpace   json.RawMessage `json:"user-space"`
		Bypass      json.RawMessage `json:"bypass"`
	}
	for i, mode := range panda.AllModes() {
		log, err := rpcTrace(mode, cap)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := log.WriteJSON(&buf); err != nil {
			return err
		}
		raw := json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		switch i {
		case 0:
			docs.KernelSpace = raw
		case 1:
			docs.UserSpace = raw
		default:
			docs.Bypass = raw
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(docs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
