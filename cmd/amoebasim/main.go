// Command amoebasim regenerates the paper's results on the simulated
// Amoeba pool:
//
//	amoebasim -table 1          Table 1 (communication latencies)
//	amoebasim -table 2          Table 2 (communication throughputs)
//	amoebasim -table 3          Table 3 (Orca applications; -scale quick|paper)
//	amoebasim -decompose        §4.2/§4.3 per-operation cost accounting
//	amoebasim -trace            protocol timeline of one null RPC per mode
//	amoebasim -sweep latency    CSV latency-vs-size sweep (plottable)
//	amoebasim -sweep speedup    CSV speedup curve for one app (-apps, -scale)
//	amoebasim -metrics          per-layer metrics tables for both modes
//	amoebasim -metrics-json F   machine-readable metrics appendix to file F
//	amoebasim -trace-json F     null-RPC span timelines as JSON to file F
//	amoebasim -faults S         fault-injection soak under scenario S (list|all|name)
//	amoebasim -fault-seed N     fault-schedule seed (default: derived from -seed)
//	amoebasim -all              everything
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"amoebasim/internal/apps"
	"amoebasim/internal/bench"
	"amoebasim/internal/cluster"
	"amoebasim/internal/faults"
	"amoebasim/internal/panda"
	"amoebasim/internal/proc"
	"amoebasim/internal/trace"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate a paper table (1, 2 or 3)")
		decompose = flag.Bool("decompose", false, "print the §4.2/§4.3 per-operation decomposition")
		traceFlag = flag.Bool("trace", false, "print the protocol timeline of one null RPC per implementation")
		sweep     = flag.String("sweep", "", "emit a CSV sweep: latency or speedup")
		all       = flag.Bool("all", false, "regenerate everything")
		scale     = flag.String("scale", "paper", "table 3 problem scale: paper or quick")
		appsFlag  = flag.String("apps", "", "comma-separated subset of apps for table 3 (tsp,asp,ab,rl,sor,leq)")
		procsFlag = flag.String("procs", "", "comma-separated processor counts for table 3 (default 1,8,16,32)")
		seed      = flag.Uint64("seed", 5, "workload seed")
		metricsF  = flag.Bool("metrics", false, "print per-layer metrics tables for both implementations")
		metricsJ  = flag.String("metrics-json", "", "write the metrics appendix as JSON to this file")
		traceJ    = flag.String("trace-json", "", "write the null-RPC span timelines as JSON to this file")
		faultsF   = flag.String("faults", "", "run the fault-injection soak: a scenario name, 'all', or 'list'")
		faultSeed = flag.Uint64("fault-seed", 0, "fault-schedule seed (0: derived from -seed)")
	)
	flag.Parse()
	if *faultsF != "" {
		if err := runFaults(*faultsF, *seed, *faultSeed); err != nil {
			fmt.Fprintln(os.Stderr, "amoebasim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *decompose, *traceFlag, *all, *sweep, *scale, *appsFlag, *procsFlag, *seed, *metricsF, *metricsJ, *traceJ); err != nil {
		fmt.Fprintln(os.Stderr, "amoebasim:", err)
		os.Exit(1)
	}
}

func run(table int, decompose, traceFlag, all bool, sweep, scale, appsFlag, procsFlag string, seed uint64, metricsF bool, metricsJ, traceJ string) error {
	did := false
	if sweep != "" {
		if err := runSweep(sweep, appsFlag, scale, seed); err != nil {
			return err
		}
		did = true
	}
	if traceFlag {
		for _, mode := range []panda.Mode{panda.KernelSpace, panda.UserSpace} {
			fmt.Printf("--- null RPC timeline, %v ---\n", mode)
			log, err := rpcTrace(mode)
			if err != nil {
				return err
			}
			if _, err := log.WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		did = true
	}
	if traceJ != "" {
		if err := writeTraceJSON(traceJ); err != nil {
			return err
		}
		did = true
	}
	if metricsF || metricsJ != "" {
		appendix := bench.ObservabilityAppendix(seed)
		if metricsF {
			if err := bench.PrintObservability(os.Stdout, appendix); err != nil {
				return err
			}
			fmt.Println()
		}
		if metricsJ != "" {
			f, err := os.Create(metricsJ)
			if err != nil {
				return err
			}
			if err := bench.WriteObservabilityJSON(f, appendix); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		did = true
	}
	if all || table == 1 {
		start := time.Now()
		bench.PrintTable1(os.Stdout, bench.Table1(nil))
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if all || table == 2 {
		start := time.Now()
		bench.PrintTable2(os.Stdout, bench.RunTable2())
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if all || decompose {
		bench.PrintDecomposition(os.Stdout,
			bench.DecomposeRPC(panda.KernelSpace),
			bench.DecomposeRPC(panda.UserSpace),
			bench.DecomposeGroup(panda.KernelSpace),
			bench.DecomposeGroup(panda.UserSpace),
		)
		fmt.Println()
		did = true
	}
	if all || table == 3 {
		start := time.Now()
		appList := bench.Table3Apps(scale)
		if appsFlag != "" {
			appList = nil
			for _, name := range strings.Split(appsFlag, ",") {
				a := apps.ByName(strings.TrimSpace(name))
				if a == nil {
					return fmt.Errorf("unknown app %q", name)
				}
				appList = append(appList, a)
			}
			if scale == "quick" {
				// Swap in the quick-scale variants by name.
				quick := bench.Table3Apps("quick")
				for i, a := range appList {
					for _, q := range quick {
						if q.Name() == a.Name() {
							appList[i] = q
						}
					}
				}
			}
		}
		var procs []int
		if procsFlag != "" {
			for _, f := range strings.Split(procsFlag, ",") {
				var p int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &p); err != nil {
					return fmt.Errorf("bad -procs value %q", f)
				}
				procs = append(procs, p)
			}
		}
		entries, err := bench.RunTable3(appList, procs, seed)
		if err != nil {
			return err
		}
		bench.PrintTable3(os.Stdout, entries)
		fmt.Printf("(generated in %v)\n", time.Since(start).Round(time.Millisecond))
		did = true
	}
	if !did {
		flag.Usage()
	}
	return nil
}

// runFaults runs the fault-injection soak workload (verified echo RPCs,
// ordered group sends, and the test-scale Orca applications) under one or
// all shipped scenarios, in both implementations.
func runFaults(name string, seed, faultSeed uint64) error {
	if name == "list" {
		for _, n := range faults.Names() {
			fmt.Printf("%-12s %s\n", n, faults.Describe(n))
		}
		return nil
	}
	names := []string{name}
	if name == "all" {
		names = faults.Names()
	}
	for _, n := range names {
		for _, mode := range []panda.Mode{panda.KernelSpace, panda.UserSpace} {
			res, err := bench.RunFaultSoakRPC(n, mode, seed, faultSeed)
			if err != nil {
				return err
			}
			bench.PrintFaultSoak(os.Stdout, res)
			results, err := bench.RunFaultSoakApps(n, mode, seed, faultSeed)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Printf("app %s: correct answer, %v\n", r.App, r.Elapsed)
			}
			fmt.Println()
		}
	}
	return nil
}

// runSweep emits plottable CSV series.
func runSweep(kind, appsFlag, scale string, seed uint64) error {
	switch kind {
	case "latency":
		fmt.Println("size_bytes,unicast_ms,multicast_ms,rpc_user_ms,rpc_kernel_ms,group_user_ms,group_kernel_ms")
		for size := 0; size <= 8192; size += 512 {
			fmt.Printf("%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", size,
				msF(bench.SystemLatency(size, false)),
				msF(bench.SystemLatency(size, true)),
				msF(bench.RPCLatency(panda.UserSpace, size)),
				msF(bench.RPCLatency(panda.KernelSpace, size)),
				msF(bench.GroupLatency(panda.UserSpace, size, false)),
				msF(bench.GroupLatency(panda.KernelSpace, size, false)))
		}
		return nil
	case "speedup":
		name := appsFlag
		if name == "" {
			name = "asp"
		}
		app := apps.ByName(strings.TrimSpace(name))
		if app == nil {
			return fmt.Errorf("unknown app %q", name)
		}
		if scale == "quick" {
			for _, q := range bench.Table3Apps("quick") {
				if q.Name() == app.Name() {
					app = q
				}
			}
		}
		fmt.Println("procs,kernel_s,user_s,kernel_speedup,user_speedup")
		var base [2]float64
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			var secs [2]float64
			for i, mode := range []panda.Mode{panda.KernelSpace, panda.UserSpace} {
				res, err := apps.RunApp(app, cluster.Config{Procs: p, Mode: mode, Seed: seed})
				if err != nil {
					return err
				}
				secs[i] = res.Elapsed.Seconds()
			}
			if p == 1 {
				base = secs
			}
			fmt.Printf("%d,%.2f,%.2f,%.2f,%.2f\n", p, secs[0], secs[1],
				base[0]/secs[0], base[1]/secs[1])
		}
		return nil
	default:
		return fmt.Errorf("unknown sweep %q (latency or speedup)", kind)
	}
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// rpcTrace runs one null RPC with tracing enabled and returns the
// captured protocol timeline.
func rpcTrace(mode panda.Mode) (*trace.Log, error) {
	c, err := cluster.New(cluster.Config{Procs: 2, Mode: mode, Seed: 1})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	log := trace.NewLog(0)
	c.Sim.SetTracer(log)
	srv := c.Transports[0]
	srv.HandleRPC(func(t *proc.Thread, ctx *panda.RPCContext, req any, n int) {
		srv.Reply(t, ctx, nil, 0)
	})
	c.Procs[1].NewThread("client", proc.PrioNormal, func(t *proc.Thread) {
		_, _, _ = c.Transports[1].Call(t, 0, nil, 0)
	})
	c.Run()
	return log, nil
}

// writeTraceJSON captures the null-RPC span timeline of each
// implementation and writes them as one JSON document.
func writeTraceJSON(path string) error {
	var docs struct {
		KernelSpace json.RawMessage `json:"kernel-space"`
		UserSpace   json.RawMessage `json:"user-space"`
	}
	for i, mode := range []panda.Mode{panda.KernelSpace, panda.UserSpace} {
		log, err := rpcTrace(mode)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := log.WriteJSON(&buf); err != nil {
			return err
		}
		raw := json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		if i == 0 {
			docs.KernelSpace = raw
		} else {
			docs.UserSpace = raw
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(docs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
