// Package amoebasim is a simulation-faithful reproduction of the system
// studied in "Comparing Kernel-Space and User-Space Communication
// Protocols on Amoeba" (Oey, Langendoen, Bal; ICDCS 1995): the Amoeba 5.2
// distributed operating system on a pool of SPARC processor boards
// connected by 10 Mbit/s Ethernet, the FLIP network layer, Amoeba's
// in-kernel RPC and totally-ordered group protocols, Panda's user-space
// protocol suite, and the Orca runtime system with the paper's six
// parallel applications.
//
// Everything runs on a deterministic discrete-event simulator with a cost
// model calibrated against the paper's own microbenchmarks, so the
// experiments of Tables 1-3 can be regenerated on any machine:
//
//	c, _ := amoebasim.NewCluster(amoebasim.ClusterConfig{
//		Procs: 2, Mode: amoebasim.UserSpace,
//	})
//	defer c.Shutdown()
//	server := c.Transports[0]
//	server.HandleRPC(func(t *amoebasim.Thread, ctx *amoebasim.RPCContext, req any, n int) {
//		server.Reply(t, ctx, req, n)
//	})
//	c.Procs[1].NewThread("client", amoebasim.PrioNormal, func(t *amoebasim.Thread) {
//		reply, _, _ := c.Transports[1].Call(t, 0, "ping", 4)
//		fmt.Println(reply, "after", c.Sim.Now())
//	})
//	c.Run()
//
// See the examples/ directory for runnable programs and cmd/amoebasim for
// the experiment driver.
package amoebasim

import (
	"amoebasim/internal/apps"
	"amoebasim/internal/bench"
	"amoebasim/internal/bypass"
	"amoebasim/internal/cluster"
	"amoebasim/internal/model"
	"amoebasim/internal/orca"
	"amoebasim/internal/panda"
	"amoebasim/internal/proc"
	"amoebasim/internal/sim"
	"amoebasim/internal/workload"
)

// Core simulation types.
type (
	// Sim is the discrete-event simulator driving a cluster.
	Sim = sim.Sim
	// Time is an instant of simulated time.
	Time = sim.Time
	// Processor is one simulated SPARC board.
	Processor = proc.Processor
	// Thread is a simulated Amoeba kernel thread.
	Thread = proc.Thread
	// CostModel is the calibrated machine cost model.
	CostModel = model.CostModel
)

// Cluster assembly.
type (
	// Cluster is a simulated Amoeba processor pool with a Panda instance
	// per worker.
	Cluster = cluster.Cluster
	// ClusterConfig configures a pool (size, protocol implementation,
	// loss, dedicated sequencer).
	ClusterConfig = cluster.Config
)

// Panda communication platform.
type (
	// Mode selects the Panda implementation: kernel-space, user-space,
	// or kernel-bypass.
	Mode = panda.Mode
	// Dispatch selects the kernel-bypass receive dispatch discipline
	// (poll, interrupt or hybrid); the other implementations ignore it.
	Dispatch = bypass.Dispatch
	// Transport is the Panda interface (RPC + totally-ordered groups).
	Transport = panda.Transport
	// RPCContext identifies an in-progress server-side RPC.
	RPCContext = panda.RPCContext
	// RPCHandler is the implicit-receipt request upcall.
	RPCHandler = panda.RPCHandler
	// GroupHandler is the ordered group delivery upcall.
	GroupHandler = panda.GroupHandler
	// NonblockingSender is implemented by transports supporting the §6
	// nonblocking broadcast extension.
	NonblockingSender = panda.NonblockingSender
)

// Orca runtime system.
type (
	// Program is a parallel Orca program (shared objects + runtimes).
	Program = orca.Program
	// Runtime is the per-processor Orca RTS.
	Runtime = orca.Runtime
	// ObjType is an Orca abstract data type.
	ObjType = orca.ObjType
	// OpDef defines one operation of an object type.
	OpDef = orca.OpDef
	// Handle names a declared shared object.
	Handle = orca.Handle
	// State is an object's encapsulated data.
	State = orca.State
	// GuardFunc is an operation guard predicate.
	GuardFunc = orca.GuardFunc
)

// Applications and experiments.
type (
	// App is one of the paper's six parallel applications.
	App = apps.App
	// AppResult is one application run's outcome.
	AppResult = apps.Result
	// Table1Row is one row of the paper's Table 1.
	Table1Row = bench.Table1Row
	// Table2Result holds Table 2's throughputs.
	Table2Result = bench.Table2
	// Table3Entry holds one application's Table 3 results.
	Table3Entry = bench.Table3Entry
	// Decomposition is the §4.2/§4.3 per-operation cost accounting.
	Decomposition = bench.Decomposition
)

// Workload engine: load-dependent behavior beyond the paper's zero-load
// microbenchmarks.
type (
	// WorkloadConfig describes one traffic-generation run (loop
	// discipline, op mix, size distribution, offered load, population).
	WorkloadConfig = workload.Config
	// WorkloadResult is one run's latency percentiles, achieved
	// throughput and occupancies.
	WorkloadResult = workload.Result
	// WorkloadMix is a weighted operation mix over rpc/group/read/write.
	WorkloadMix = workload.Mix
	// Knee is one implementation's bisected saturation point.
	Knee = workload.Knee
)

// Multi-tenant populations and deterministic trace record/replay.
type (
	// WorkloadClass is one client class of a multi-tenant population (op
	// mix, size distribution, arrival process, think time, SLO, load
	// shape).
	WorkloadClass = workload.Class
	// WorkloadClassStats is one class's slice of a run result (latency
	// percentiles, achieved vs. offered, SLO attainment).
	WorkloadClassStats = workload.ClassStats
	// ArrivalSpec is an arrival process with its Gamma/Weibull shape.
	ArrivalSpec = workload.ArrivalSpec
	// LoadShape modulates a class's offered load over time (steady,
	// bursty on/off, diurnal).
	LoadShape = workload.LoadShape
	// Trace is a versioned deterministic recording of one run's operation
	// stream, replayable bit-identically — including into another
	// implementation for paired comparisons.
	Trace = workload.Trace
	// TraceEventSource yields a trace's events incrementally, in recorded
	// order (see OpenTraceStream).
	TraceEventSource = workload.EventSource
)

// Traffic-generation disciplines.
const (
	// OpenLoop issues on a seeded arrival process regardless of
	// completions — the discipline that exposes the saturation knee.
	OpenLoop = workload.OpenLoop
	// ClosedLoop runs a fixed client population with think time.
	ClosedLoop = workload.ClosedLoop
)

// The two Panda implementations compared by the paper, plus the modern
// third column: user-space protocols over a user-mapped NIC queue pair
// (no syscall crossings, zero-copy fragmentation).
const (
	KernelSpace = panda.KernelSpace
	UserSpace   = panda.UserSpace
	Bypass      = panda.Bypass
)

// Kernel-bypass receive dispatch disciplines.
const (
	// DispatchPoll spins on the completion ring (lowest latency, burns a
	// core) — the canonical kernel-bypass configuration and the default.
	DispatchPoll = bypass.Poll
	// DispatchInterrupt parks the consumer and pays a wakeup dispatch per
	// doorbell, like the paper's kernel receive path.
	DispatchInterrupt = bypass.Interrupt
	// DispatchHybrid polls briefly after traffic, then parks.
	DispatchHybrid = bypass.Hybrid
)

// Thread priorities.
const (
	PrioNormal = proc.PrioNormal
	PrioDaemon = proc.PrioDaemon
)

// NewCluster builds a simulated pool: Ethernet segments, one Amoeba
// kernel per processor, and a Panda transport per worker.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewProgram creates an Orca program over a cluster's transports.
func NewProgram(c *Cluster) *Program {
	return orca.NewProgram(c.Transports, c.Procs[:len(c.Transports)])
}

// CalibratedModel returns the cost model calibrated against the paper's
// Tables 1 and 2.
func CalibratedModel() *CostModel { return model.Calibrated() }

// Apps returns the six applications at paper (Table 3) scale.
func Apps() []App { return apps.All() }

// AppByName returns an application by its short name (tsp, asp, ab, rl,
// sor, leq), or nil.
func AppByName(name string) App { return apps.ByName(name) }

// RunApp executes one application on a fresh cluster and reports its
// simulated execution time and answer.
func RunApp(app App, cfg ClusterConfig) (AppResult, error) { return apps.RunApp(app, cfg) }

// Table1 regenerates the paper's Table 1 (nil sizes = the paper's 0-4 KB).
// Use workers > 1 to fan the cells out over a bounded goroutine pool;
// results are bit-identical for any worker count.
func Table1(sizes []int, workers int) ([]Table1Row, error) {
	return bench.Table1Sweep(sizes, workers)
}

// Table2 regenerates the paper's Table 2, fanning its cells out over
// workers goroutines (results are worker-count independent).
func Table2(workers int) (Table2Result, error) { return bench.Table2Sweep(workers) }

// Table3 regenerates the paper's Table 3 ("paper" or "quick" scale; nil
// procs = the paper's 1/8/16/32), fanning the app x implementation x
// processor-count cells out over workers goroutines (results are
// worker-count independent).
func Table3(scale string, procs []int, seed uint64, workers int) ([]*Table3Entry, error) {
	return bench.Table3Sweep(bench.Table3Apps(scale), procs, seed, workers)
}

// RunWorkload drives one traffic-generation run on a fresh cluster and
// reports latency percentiles, achieved vs. offered throughput, and
// sequencer/worker occupancy. Deterministic for a fixed seed.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) { return workload.Run(cfg) }

// FindKnee bisects to the offered load at which cfg's implementation
// saturates under open-loop traffic (completions fall below 90% of
// arrivals), bracketed by [lo, hi] ops/sec with the given probe budget.
func FindKnee(cfg WorkloadConfig, lo, hi float64, probes int) (Knee, error) {
	return workload.FindKnee(cfg, lo, hi, probes)
}

// ParseWorkloadClasses parses a multi-tenant population spec
// ("name:key=val,...;name:...", or "@file.json" for the committed scenario
// format).
func ParseWorkloadClasses(s string) ([]WorkloadClass, error) { return workload.ParseClasses(s) }

// LoadTrace reads a recorded TRACE_*.json operation stream; set it as
// WorkloadConfig.Replay to drive a run from it.
func LoadTrace(path string) (*Trace, error) { return workload.LoadTrace(path) }

// OpenTraceStream parses only a trace's header, returning it plus a
// source factory that streams the events incrementally from disk. Set
// the header as WorkloadConfig.Replay and the factory as
// WorkloadConfig.ReplaySource; the streamed replay is bit-identical to
// the in-memory one but never materializes the event array.
func OpenTraceStream(path string) (*Trace, func() (TraceEventSource, error), error) {
	return workload.OpenTraceStream(path)
}

// ParseDispatch parses a kernel-bypass dispatch mode name ("poll",
// "interrupt", "hybrid"; empty defaults to poll).
func ParseDispatch(s string) (Dispatch, error) { return bypass.ParseDispatch(s) }

// SaveTrace writes a recorded trace deterministically (re-recording an
// identical run reproduces identical bytes).
func SaveTrace(path string, t *Trace) error { return workload.SaveTrace(path, t) }
