// bypass runs the paired three-way experiment behind the repo's
// "implementation matrix": the committed three-class scenario
// (SCENARIO_multiclass.json) is recorded once under kernel-space, then
// the identical arrival stream is streamed-replayed into the user-space
// and kernel-bypass implementations. Every arrival instant, size and
// destination is pinned by the trace, so the per-class latency and
// SLO-attainment deltas below are pure protocol-stack cost — what three
// decades of transport evolution buy (and, for large group payloads,
// what the bypass PB-only sequencer gives back).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	classes, err := amoebasim.ParseWorkloadClasses("@" + findScenario())
	if err != nil {
		return err
	}

	// Record the stream once, under the kernel-space implementation.
	rec, err := amoebasim.RunWorkload(amoebasim.WorkloadConfig{
		Mode:    amoebasim.KernelSpace,
		Procs:   8,
		Classes: classes,
		Window:  200 * time.Millisecond,
		Seed:    42,
		Record:  true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d arrivals under kernel-space\n\n", len(rec.Trace.Events))
	report("kernel-space (recording run)", rec)

	// Save the trace and stream it back from disk — the replay parses
	// only the header up front and pulls events incrementally, yet is
	// bit-identical to an in-memory replay.
	dir, err := os.MkdirTemp("", "bypass-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "TRACE_demo.json")
	if err := amoebasim.SaveTrace(path, rec.Trace); err != nil {
		return err
	}

	for _, m := range []struct {
		label    string
		mode     amoebasim.Mode
		dispatch amoebasim.Dispatch
	}{
		{"user-space (paired replay)", amoebasim.UserSpace, 0},
		{"kernel-bypass, poll (paired replay)", amoebasim.Bypass, amoebasim.DispatchPoll},
		{"kernel-bypass, hybrid (paired replay)", amoebasim.Bypass, amoebasim.DispatchHybrid},
	} {
		hdr, src, err := amoebasim.OpenTraceStream(path)
		if err != nil {
			return err
		}
		rep, err := amoebasim.RunWorkload(amoebasim.WorkloadConfig{
			Mode:         m.mode,
			Dispatch:     m.dispatch,
			Replay:       hdr,
			ReplaySource: src,
		})
		if err != nil {
			return err
		}
		report(m.label, rep)
	}

	fmt.Println("same arrivals, three protocol stacks: the kernel-bypass rows pay no")
	fmt.Println("syscall crossings (RPC-heavy classes win big) but their sequencer is")
	fmt.Println("PB-only, so the group-heavy batch class gives some of it back on")
	fmt.Println("large payloads — see EXPERIMENTS.md \"Kernel bypass\".")
	return nil
}

// findScenario locates the committed scenario whether the example runs
// from the repo root or from its own directory.
func findScenario() string {
	for _, p := range []string{"SCENARIO_multiclass.json", "../../SCENARIO_multiclass.json"} {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "SCENARIO_multiclass.json"
}

func report(label string, r *amoebasim.WorkloadResult) {
	fmt.Printf("%s: %.0f ops/sec achieved, fairness(Jain)=%.3f\n", label, r.Achieved, r.Fairness)
	for _, cs := range r.PerClass {
		slo := "no SLO"
		if cs.SLO > 0 {
			slo = fmt.Sprintf("SLO %v: %.1f%% met", cs.SLO, 100*cs.SLOAttainment)
		}
		fmt.Printf("  %-12s p50 %8v  p99 %8v  p99.9 %8v  (%s)\n",
			cs.Name, cs.Latency.P50.Round(time.Microsecond),
			cs.Latency.P99.Round(time.Microsecond),
			cs.Latency.P999.Round(time.Microsecond), slo)
	}
	fmt.Println()
}
