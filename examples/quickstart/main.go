// Quickstart: build a small simulated Amoeba pool, perform one RPC and one
// totally-ordered broadcast under both Panda implementations, and print
// the simulated latencies.
package main

import (
	"fmt"
	"log"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, mode := range []amoebasim.Mode{amoebasim.KernelSpace, amoebasim.UserSpace} {
		c, err := amoebasim.NewCluster(amoebasim.ClusterConfig{
			Procs: 3, Mode: mode, Group: true,
		})
		if err != nil {
			return err
		}

		// RPC: processor 0 serves, processor 1 calls.
		server := c.Transports[0]
		server.HandleRPC(func(t *amoebasim.Thread, ctx *amoebasim.RPCContext, req any, n int) {
			server.Reply(t, ctx, fmt.Sprintf("echo(%v)", req), n)
		})

		// Group: every processor logs ordered deliveries.
		for i, tr := range c.Transports {
			i := i
			tr.HandleGroup(func(t *amoebasim.Thread, sender int, seqno uint64, payload any, n int) {
				if i == 0 {
					fmt.Printf("  [%v] delivery #%d from processor %d: %v\n",
						c.Sim.Now(), seqno, sender, payload)
				}
			})
		}

		client := c.Transports[1]
		c.Procs[1].NewThread("client", amoebasim.PrioNormal, func(t *amoebasim.Thread) {
			start := c.Sim.Now()
			reply, _, err := client.Call(t, 0, "ping", 64)
			if err != nil {
				fmt.Println("  rpc error:", err)
				return
			}
			fmt.Printf("  [%v] rpc reply %q in %v\n", c.Sim.Now(), reply, c.Sim.Now().Sub(start))

			start = c.Sim.Now()
			if err := client.GroupSend(t, "hello group", 128); err != nil {
				fmt.Println("  group error:", err)
				return
			}
			fmt.Printf("  [%v] broadcast ordered in %v\n", c.Sim.Now(), c.Sim.Now().Sub(start))
		})

		fmt.Printf("%v implementation:\n", mode)
		c.Run()
		c.Shutdown()
	}
	return nil
}
