// rpc-pingpong reproduces the Table 1 latency experiment interactively:
// RPC round-trip times for 0-4 KB requests under both Panda
// implementations, printed side by side with the paper's numbers.
package main

import (
	"fmt"
	"log"
	"time"

	"amoebasim"
)

// paper holds Table 1's published RPC latencies in milliseconds.
var paper = map[int][2]float64{ // size -> {user, kernel}
	0:    {1.56, 1.27},
	1024: {2.53, 2.23},
	2048: {3.60, 3.40},
	3072: {4.77, 4.48},
	4096: {5.27, 5.06},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("RPC latency: simulated vs. paper (Table 1)")
	fmt.Printf("%-8s %-22s %-22s\n", "size", "user-space (paper)", "kernel-space (paper)")
	for _, size := range []int{0, 1024, 2048, 3072, 4096} {
		user, err := measure(amoebasim.UserSpace, size)
		if err != nil {
			return err
		}
		kern, err := measure(amoebasim.KernelSpace, size)
		if err != nil {
			return err
		}
		p := paper[size]
		fmt.Printf("%-8s %-22s %-22s\n",
			fmt.Sprintf("%d Kb", size/1024),
			fmt.Sprintf("%.2f ms (%.2f)", ms(user), p[0]),
			fmt.Sprintf("%.2f ms (%.2f)", ms(kern), p[1]))
	}
	return nil
}

func measure(mode amoebasim.Mode, size int) (time.Duration, error) {
	c, err := amoebasim.NewCluster(amoebasim.ClusterConfig{Procs: 2, Mode: mode})
	if err != nil {
		return 0, err
	}
	defer c.Shutdown()
	server := c.Transports[0]
	server.HandleRPC(func(t *amoebasim.Thread, ctx *amoebasim.RPCContext, req any, n int) {
		server.Reply(t, ctx, nil, 0)
	})
	const rounds = 10
	var total time.Duration
	c.Procs[1].NewThread("client", amoebasim.PrioNormal, func(t *amoebasim.Thread) {
		if _, _, err := c.Transports[1].Call(t, 0, nil, size); err != nil {
			return // warm-up failed; total stays zero
		}
		start := c.Sim.Now()
		for i := 0; i < rounds; i++ {
			if _, _, err := c.Transports[1].Call(t, 0, nil, size); err != nil {
				return
			}
		}
		total = c.Sim.Now().Sub(start)
	})
	c.Run()
	if total == 0 {
		return 0, fmt.Errorf("pingpong did not complete")
	}
	return total / rounds, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
