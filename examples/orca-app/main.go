// orca-app runs one of the paper's Table 3 applications end to end via the
// public API and prints its speedup curve — a miniature of
// `amoebasim -sweep speedup`.
package main

import (
	"flag"
	"fmt"
	"log"

	"amoebasim"
)

func main() {
	name := flag.String("app", "asp", "application: tsp, asp, ab, rl, sor, leq")
	flag.Parse()
	if err := run(*name); err != nil {
		log.Fatal(err)
	}
}

func run(name string) error {
	app := amoebasim.AppByName(name)
	if app == nil {
		return fmt.Errorf("unknown application %q", name)
	}
	fmt.Printf("%s on the simulated Amoeba pool (paper-scale problem)\n", name)
	fmt.Printf("%-6s %-14s %-14s %-10s\n", "procs", "kernel-space", "user-space", "answers")
	var base [2]float64
	for _, procs := range []int{1, 4, 8} {
		var secs [2]float64
		var answers [2]int64
		for i, mode := range []amoebasim.Mode{amoebasim.KernelSpace, amoebasim.UserSpace} {
			res, err := amoebasim.RunApp(app, amoebasim.ClusterConfig{
				Procs: procs, Mode: mode, Seed: 5,
			})
			if err != nil {
				return err
			}
			secs[i] = res.Elapsed.Seconds()
			answers[i] = res.Answer
		}
		if answers[0] != answers[1] {
			return fmt.Errorf("implementations disagree: %d vs %d", answers[0], answers[1])
		}
		if procs == 1 {
			base = secs
		}
		fmt.Printf("%-6d %7.1f s (%.1fx) %6.1f s (%.1fx)   %d\n",
			procs, secs[0], base[0]/secs[0], secs[1], base[1]/secs[1], answers[0])
	}
	return nil
}
