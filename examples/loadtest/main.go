// loadtest drives a mixed RPC + totally-ordered group workload against
// both Panda implementations, bisects to each one's saturation knee, and
// prints latency percentile tables just below and just past the knee.
//
// This is the load-dependent counterpart of the paper's Tables 1-2: at
// zero load the kernel-space and user-space latencies differ by tens of
// percent, but under open-loop group traffic the user-space sequencer
// (a worker that also sequences, §4.3) runs out of CPU first, so its
// curve bends at a lower offered load. Dedicating a processor to the
// sequencer moves the knee back — the Table 3 "User-space-dedicated"
// effect.
package main

import (
	"fmt"
	"log"
	"time"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type modeCase struct {
	label     string
	mode      amoebasim.Mode
	dedicated bool
}

func run() error {
	base := amoebasim.WorkloadConfig{
		Procs:  4,
		Mix:    amoebasim.WorkloadMix{RPC: 0.5, Group: 0.5},
		Window: 300 * time.Millisecond,
		Seed:   11,
	}
	modes := []modeCase{
		{"kernel-space", amoebasim.KernelSpace, false},
		{"user-space", amoebasim.UserSpace, false},
		{"user-space-dedicated", amoebasim.UserSpace, true},
	}

	fmt.Printf("mixed workload (%d workers, 50%% RPC / 50%% ordered group, 256-byte messages)\n\n", base.Procs)
	for _, m := range modes {
		cfg := base
		cfg.Mode = m.mode
		cfg.DedicatedSequencer = m.dedicated

		knee, err := amoebasim.FindKnee(cfg, 300, 3000, 6)
		if err != nil {
			return err
		}
		fmt.Printf("%s: saturates at %.0f ops/sec\n", m.label, knee.OpsPerSec)
		fmt.Printf("  %10s %10s %9s %9s %9s %9s\n",
			"offered/s", "achieved/s", "p50", "p90", "p99", "max")

		// Probe the curve around the knee: comfortable, near, and past it.
		for _, frac := range []float64{0.5, 0.9, 1.2} {
			cfg.OfferedLoad = frac * knee.OpsPerSec
			res, err := amoebasim.RunWorkload(cfg)
			if err != nil {
				return err
			}
			sat := ""
			if res.Saturated() {
				sat = "  (saturated: backlog growing)"
			}
			fmt.Printf("  %10.0f %10.0f %9s %9s %9s %9s%s\n",
				res.Offered, res.Achieved,
				ms(res.Overall.P50), ms(res.Overall.P90),
				ms(res.Overall.P99), ms(res.Overall.Max), sat)
		}
		fmt.Println()
	}
	return nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
