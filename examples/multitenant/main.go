// multitenant drives a three-class heavy-tailed population — an
// SLO-bound interactive RPC class, a heavy-tailed Weibull batch feed, and
// a bursty Gamma crawler — records the generated operation stream, then
// replays the identical arrivals into the other Panda implementation: the
// paired kernel-vs-user-space experiment. Because the replay pins every
// arrival instant, size and destination, the two runs differ only in the
// protocol stack underneath, so per-class latency and SLO-attainment
// deltas are directly attributable to it.
package main

import (
	"fmt"
	"log"
	"time"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	classes, err := amoebasim.ParseWorkloadClasses(
		"interactive:clients=6,load=500,mix=rpc,dist=fixed:128,slo=4ms;" +
			"batch:clients=4,load=300,mix=group,dist=uniform:256-4096,arrival=weibull:0.55;" +
			"bursty:clients=4,load=200,mix=mixed,arrival=gamma:0.5,slo=20ms,shape=bursty")
	if err != nil {
		return err
	}

	// Record the stream under the kernel-space implementation.
	rec, err := amoebasim.RunWorkload(amoebasim.WorkloadConfig{
		Mode:    amoebasim.KernelSpace,
		Procs:   8,
		Classes: classes,
		Window:  200 * time.Millisecond,
		Seed:    42,
		Record:  true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d arrivals under kernel-space\n\n", len(rec.Trace.Events))
	report("kernel-space (recording run)", rec)

	// Replay the identical arrivals into user-space.
	rep, err := amoebasim.RunWorkload(amoebasim.WorkloadConfig{
		Mode:   amoebasim.UserSpace,
		Replay: rec.Trace,
	})
	if err != nil {
		return err
	}
	report("user-space (paired replay)", rep)

	fmt.Println("same arrivals, different protocol stack: the per-class deltas above")
	fmt.Println("are pure implementation cost, with zero sampling noise between runs.")
	return nil
}

func report(label string, r *amoebasim.WorkloadResult) {
	fmt.Printf("%s: %.0f ops/sec achieved, fairness(Jain)=%.3f\n", label, r.Achieved, r.Fairness)
	for _, cs := range r.PerClass {
		slo := "no SLO"
		if cs.SLO > 0 {
			slo = fmt.Sprintf("SLO %v: %.1f%% met", cs.SLO, 100*cs.SLOAttainment)
		}
		fmt.Printf("  %-12s p50 %8v  p99 %8v  p99.9 %8v  (%s)\n",
			cs.Name, cs.Latency.P50.Round(time.Microsecond),
			cs.Latency.P99.Round(time.Microsecond),
			cs.Latency.P999.Round(time.Microsecond), slo)
	}
	fmt.Println()
}
