// dedicated-sequencer reproduces the paper's LEQ observation in miniature:
// a broadcast-heavy workload overloads the user-space sequencer when it
// shares a machine with a worker, and dedicating one processor to
// sequencing pays off at scale (Table 3's "User-space-dedicated" row).
package main

import (
	"fmt"
	"log"
	"time"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		procs  = 8
		rounds = 60
	)
	fmt.Printf("broadcast storm: %d processors, %d all-to-all rounds\n", procs, rounds)
	for _, dedicated := range []bool{false, true} {
		elapsed, err := storm(procs, rounds, dedicated)
		if err != nil {
			return err
		}
		label := "sequencer on member 0"
		if dedicated {
			label = "dedicated sequencer machine"
		}
		fmt.Printf("  %-28s %v\n", label, elapsed)
	}
	return nil
}

// storm runs `rounds` iterations in which every processor broadcasts a
// small message and waits until it has seen everyone's message for the
// round, then reports the simulated makespan.
func storm(procs, rounds int, dedicated bool) (time.Duration, error) {
	c, err := amoebasim.NewCluster(amoebasim.ClusterConfig{
		Procs: procs, Mode: amoebasim.UserSpace, Group: true,
		DedicatedSequencer: dedicated,
	})
	if err != nil {
		return 0, err
	}
	defer c.Shutdown()

	type waiter struct {
		thread *amoebasim.Thread
		armed  bool
	}
	got := make([]int, procs) // messages seen by each member
	parked := make([]*waiter, procs)

	for i := 0; i < procs; i++ {
		i := i
		c.Transports[i].HandleGroup(func(t *amoebasim.Thread, sender int, seqno uint64, payload any, n int) {
			got[i]++
			if w := parked[i]; w != nil && got[i]%procs == 0 {
				parked[i] = nil
				t.Flush()
				w.thread.Unblock()
			}
		})
	}

	var finish amoebasim.Time
	done := 0
	for i := 0; i < procs; i++ {
		i := i
		tr := c.Transports[i]
		c.Procs[i].NewThread("storm", amoebasim.PrioNormal, func(t *amoebasim.Thread) {
			for r := 0; r < rounds; r++ {
				if err := tr.GroupSend(t, r, 256); err != nil {
					return
				}
				t.Compute(500 * time.Microsecond) // a little local work
				if got[i] < (r+1)*procs {
					parked[i] = &waiter{thread: t}
					t.Block()
				}
			}
			done++
			if done == procs {
				finish = c.Sim.Now()
			}
		})
	}
	c.Run()
	if done != procs {
		return 0, fmt.Errorf("only %d/%d workers finished", done, procs)
	}
	return finish.Duration(), nil
}
