// replicated-object demonstrates the Orca programming model on the
// simulated pool: a replicated shared counter (local reads, totally
// ordered write broadcasts) and a guarded bounded buffer owned by one
// processor (remote operations block in continuations until their guard
// holds) — the mechanisms behind Table 3's RL/SOR results.
package main

import (
	"fmt"
	"log"
	"time"

	"amoebasim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func counterType() *amoebasim.ObjType {
	return (&typeBuilder{}).counter()
}

type typeBuilder struct{}

func (typeBuilder) counter() *amoebasim.ObjType {
	return newType("counter",
		&amoebasim.OpDef{
			Name: "inc",
			Apply: func(t *amoebasim.Thread, s amoebasim.State, args any) (any, int) {
				c := s.(*int)
				*c++
				return *c, 4
			},
		},
		&amoebasim.OpDef{
			Name: "value", ReadOnly: true,
			Apply: func(t *amoebasim.Thread, s amoebasim.State, args any) (any, int) {
				return *s.(*int), 4
			},
		},
	)
}

func bufferType(capacity int) *amoebasim.ObjType {
	return newType("buffer",
		&amoebasim.OpDef{
			Name: "put",
			Guard: func(s amoebasim.State) bool {
				return len(*s.(*[]any)) < capacity
			},
			Apply: func(t *amoebasim.Thread, s amoebasim.State, args any) (any, int) {
				q := s.(*[]any)
				*q = append(*q, args)
				return nil, 0
			},
		},
		&amoebasim.OpDef{
			Name: "get",
			Guard: func(s amoebasim.State) bool {
				return len(*s.(*[]any)) > 0
			},
			Apply: func(t *amoebasim.Thread, s amoebasim.State, args any) (any, int) {
				q := s.(*[]any)
				v := (*q)[0]
				*q = (*q)[1:]
				return v, 8
			},
		},
	)
}

// newType is a tiny alias keeping the literals compact.
func newType(name string, ops ...*amoebasim.OpDef) *amoebasim.ObjType {
	t := &amoebasim.ObjType{Name: name, Ops: make(map[string]*amoebasim.OpDef, len(ops))}
	for _, op := range ops {
		t.Ops[op.Name] = op
	}
	return t
}

func run() error {
	const procs = 4
	c, err := amoebasim.NewCluster(amoebasim.ClusterConfig{
		Procs: procs, Mode: amoebasim.UserSpace, Group: true,
	})
	if err != nil {
		return err
	}
	defer c.Shutdown()
	pg := amoebasim.NewProgram(c)

	counter := pg.DeclareReplicated("hits", counterType(), func() amoebasim.State {
		v := 0
		return &v
	})
	buffer := pg.DeclareOwned("pipe", bufferType(2), 0, func() amoebasim.State {
		var q []any
		return &q
	})

	// Every processor increments the replicated counter a few times.
	for i := 0; i < procs; i++ {
		rt := pg.Runtime(i)
		rt.Go("worker", func(t *amoebasim.Thread) {
			for j := 0; j < 3; j++ {
				if _, _, err := rt.Invoke(t, counter, "inc", nil, 0); err != nil {
					fmt.Println("inc:", err)
					return
				}
			}
		})
	}

	// Producer on the owner, consumer on another machine: the consumer's
	// remote "get" blocks in a continuation whenever the buffer is empty.
	producer := pg.Runtime(0)
	producer.Go("producer", func(t *amoebasim.Thread) {
		for i := 0; i < 5; i++ {
			t.Compute(2 * time.Millisecond)
			if _, _, err := producer.Invoke(t, buffer, "put", fmt.Sprintf("item-%d", i), 8); err != nil {
				fmt.Println("put:", err)
				return
			}
		}
	})
	consumer := pg.Runtime(3)
	consumer.Go("consumer", func(t *amoebasim.Thread) {
		for i := 0; i < 5; i++ {
			v, _, err := consumer.Invoke(t, buffer, "get", nil, 0)
			if err != nil {
				fmt.Println("get:", err)
				return
			}
			fmt.Printf("[%v] consumer got %v\n", c.Sim.Now(), v)
		}
		// Reads on the replicated counter are purely local.
		v, _, err := consumer.Invoke(t, counter, "value", nil, 0)
		if err != nil {
			fmt.Println("value:", err)
			return
		}
		fmt.Printf("[%v] counter converged to %v on every replica\n", c.Sim.Now(), v)
	})

	c.Run()
	return nil
}
